package exper

import (
	"reflect"
	"testing"

	"xability/internal/workload"
)

// The exper tests pin the qualitative shapes the paper's claims predict —
// who wins, by what kind of factor — not absolute numbers.

func TestT1Shapes(t *testing.T) {
	rows := TableT1(101)
	byKey := make(map[string]T1Row)
	for _, r := range rows {
		byKey[r.Protocol+"/"+r.Scenario] = r
	}

	xaNice := byKey["x-ability/nice"]
	if !xaNice.XAble || xaNice.EffectsInForce != 1 || !xaNice.Replied {
		t.Errorf("x-ability nice run should be x-able with exactly one effect: %+v", xaNice)
	}
	xaCrash := byKey["x-ability/crash-failover"]
	if !xaCrash.XAble || xaCrash.EffectsInForce != 1 {
		t.Errorf("x-ability crash failover should stay exactly-once: %+v", xaCrash)
	}
	// The adversarial rows landed with the scenario layer: a partition
	// (over the message-passing consensus substrate) and a delay storm
	// must not break exactly-once either.
	xaPart := byKey["x-ability/partition"]
	if !xaPart.XAble || xaPart.EffectsInForce != 1 || !xaPart.Replied {
		t.Errorf("x-ability partition run should stay exactly-once: %+v", xaPart)
	}
	xaStorm := byKey["x-ability/delay-storm"]
	if !xaStorm.XAble || xaStorm.EffectsInForce != 1 || !xaStorm.Replied {
		t.Errorf("x-ability delay-storm run should stay exactly-once: %+v", xaStorm)
	}

	pbNice := byKey["primary-backup/nice"]
	if pbNice.EffectsInForce != 1 {
		t.Errorf("primary-backup nice run should apply once: %+v", pbNice)
	}
	pbCrash := byKey["primary-backup/crash-failover"]
	if pbCrash.EffectsInForce < 2 {
		t.Errorf("primary-backup failover should duplicate the effect: %+v", pbCrash)
	}
	if pbCrash.XAble {
		t.Errorf("duplicated diverging executions must not be x-able: %+v", pbCrash)
	}

	act := byKey["active/nice"]
	if act.EffectsInForce != 3 {
		t.Errorf("active replication should apply the effect on all 3 replicas: %+v", act)
	}
	if act.XAble {
		t.Errorf("active replication's diverging duplicates must not be x-able: %+v", act)
	}
}

func TestT2SpectrumShape(t *testing.T) {
	rows := TableT2(202)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Executions != 1 {
		t.Errorf("no suspicion should mean a single executor (primary-backup flavor): %+v", rows[0])
	}
	for _, r := range rows {
		if !r.XAble {
			t.Errorf("every spectrum point must remain x-able: %+v", r)
		}
	}
	// With maximum pulses the run must show concurrent execution.
	last := rows[len(rows)-1]
	if last.Executions < 2 {
		t.Errorf("aggressive suspicion should force multiple executions (active flavor): %+v", last)
	}
}

func TestT3CostShape(t *testing.T) {
	rows := TableT3(303, 6)
	byKey := make(map[string]T3Row)
	for _, r := range rows {
		byKey[r.Protocol+string(rune('0'+r.Replicas))] = r
	}
	// Active replication sends more messages per request than
	// primary-backup at the same degree (sequencing + n executions).
	if byKey["active3"].MsgsPerReq <= byKey["primary-backup3"].MsgsPerReq {
		t.Errorf("active (%0.1f msgs) should out-message primary-backup (%0.1f)",
			byKey["active3"].MsgsPerReq, byKey["primary-backup3"].MsgsPerReq)
	}
	// The CT substrate costs more messages than the assumed local objects.
	if byKey["x-ability/ct3"].MsgsPerReq <= byKey["x-ability/local3"].MsgsPerReq {
		t.Errorf("CT consensus (%0.1f msgs) should out-message local objects (%0.1f)",
			byKey["x-ability/ct3"].MsgsPerReq, byKey["x-ability/local3"].MsgsPerReq)
	}
}

func TestT4ConsensusShape(t *testing.T) {
	rows := TableT4(404, 10)
	var local1, ct1 T4Row
	for _, r := range rows {
		if r.Proposers == 1 {
			if r.Provider == "local" {
				local1 = r
			} else {
				ct1 = r
			}
		}
	}
	if ct1.PerDecide <= local1.PerDecide {
		t.Errorf("message-passing consensus (%v) should be slower than the shared object (%v)",
			ct1.PerDecide, local1.PerDecide)
	}
}

func TestT7SweepShapes(t *testing.T) {
	rows := TableT7(1, 25, 0)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Dist.Runs != 25 {
			t.Errorf("%s: runs = %d", r.Scenario, r.Dist.Runs)
		}
		// The paper's claim at population scale: every schedule of every
		// swept scenario stays x-able and answered.
		if r.Dist.XAbleRate() != 1.0 || r.Dist.RepliedRate() != 1.0 {
			t.Errorf("%s: x-able %.4f replied %.4f; failing seeds %v",
				r.Scenario, r.Dist.XAbleRate(), r.Dist.RepliedRate(), r.Dist.Failing)
		}
		if r.Dist.Effects[1] != r.Dist.Runs {
			t.Errorf("%s: effects histogram %v, want all mass on 1", r.Scenario, r.Dist.Effects)
		}
	}
}

func TestT6ScalesAndStaysCorrect(t *testing.T) {
	rows := TableT6()
	for _, r := range rows {
		if !r.XAble {
			t.Errorf("synthetic protocol-shaped history must verify: %+v", r)
		}
	}
	// Growth sanity: bigger histories take longer (not asserting a
	// specific complexity, just monotone-ish growth end to end).
	first, last := rows[0], rows[len(rows)-1]
	if last.Events <= first.Events {
		t.Errorf("sweep did not grow: %+v … %+v", first, last)
	}
}

func TestSyntheticHistoryShape(t *testing.T) {
	reg := workload.Registry()
	h, specs := SyntheticHistory(reg, 4, 3)
	if len(specs) != 4 {
		t.Fatalf("specs = %d", len(specs))
	}
	// Per request: 2 dangling starts + pair + 2 duplicate completions = 6.
	if len(h) != 4*6 {
		t.Errorf("events = %d, want 24", len(h))
	}
}

// TestT9ShardScaling pins the shard-scaling table's qualitative shape —
// the paper's composition claim at scale: every row of the sharded
// deployment verifies exactly-once end to end (per-shard R2–R4 plus
// global routing), protocol cost per request stays flat, and aggregate
// throughput in virtual time scales at least 3× from 1 shard to 4.
func TestT9ShardScaling(t *testing.T) {
	requests := 0 // table default
	if testing.Short() {
		requests = 48
	}
	rows := TableT9(1, requests)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (1, 2, 4, 8 shards)", len(rows))
	}
	for _, r := range rows {
		if !r.XAble || !r.Replied {
			t.Errorf("%d shards: x-able %v replied %v — composition must hold on every row", r.Shards, r.XAble, r.Replied)
		}
		// Sharding buys throughput with parallel groups, not cheaper
		// requests: per-request message cost must not drift.
		if r.MsgsPerReq < 4 || r.MsgsPerReq > 8 {
			t.Errorf("%d shards: msgs/req = %.1f, outside the nice-run protocol cost band", r.Shards, r.MsgsPerReq)
		}
	}
	if !testing.Short() {
		if ratio := rows[2].OpsPerVSec / rows[0].OpsPerVSec; ratio < 3 {
			t.Errorf("1→4 shard scaling = %.2fx, want ≥3x (simtimes: 1sh %v, 4sh %v)",
				ratio, rows[0].SimTime, rows[2].SimTime)
		}
	}
	// Monotone scaling across the whole sweep, with slack for skew noise.
	for i := 1; i < len(rows); i++ {
		if rows[i].OpsPerVSec <= rows[i-1].OpsPerVSec {
			t.Errorf("throughput not increasing: %d shards %.0f → %d shards %.0f ops/vsec",
				rows[i-1].Shards, rows[i-1].OpsPerVSec, rows[i].Shards, rows[i].OpsPerVSec)
		}
	}
}

// TestT11SaturationCurve pins the throughput plane's headline claims.
// Every point on every curve must be a verified exactly-once run — an
// unverified row is excluded from peaks by construction, so the ratio
// check would fail loudly too. The shape checks are the two things a
// saturation experiment exists to show: the unbatched plane hits a
// capacity wall (latency explodes past the knee while throughput
// plateaus), and batching moves the wall by at least 3×.
func TestT11SaturationCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep skipped in -short mode")
	}
	rows := TableT11(1)
	if len(rows) != 3*(1+len(t11Rates)) {
		t.Fatalf("rows = %d, want %d", len(rows), 3*(1+len(t11Rates)))
	}
	for _, r := range rows {
		if !r.XAble || !r.Replied {
			t.Errorf("%s %s rate %d: x-able %v replied %v — every swept point must verify",
				r.Config, r.Mode, r.Rate, r.XAble, r.Replied)
		}
	}
	peaks := T11Peak(rows)
	if ratio := peaks["batched+pipelined"] / peaks["unbatched"]; ratio < 3 {
		t.Errorf("batched+pipelined peak %.0f vs unbatched peak %.0f ops/vsec = %.2fx, want ≥3x",
			peaks["batched+pipelined"], peaks["unbatched"], ratio)
	}
	// The unbatched knee: past saturation the offered load keeps rising
	// but throughput does not follow, and queueing shows up as latency.
	var low, high T11Row
	for _, r := range rows {
		if r.Config != "unbatched" || r.Mode != "open" {
			continue
		}
		if r.Rate == t11Rates[0] {
			low = r
		}
		if r.Rate == t11Rates[len(t11Rates)-1] {
			high = r
		}
	}
	if high.OpsPerVSec > peaks["unbatched"]*1.01 {
		t.Errorf("unbatched did not saturate: %.0f ops/vsec at rate %d", high.OpsPerVSec, high.Rate)
	}
	if high.LatP50 < 10*low.LatP50 {
		t.Errorf("unbatched overload latency p50 %v is not the post-knee blowup (baseline %v)",
			high.LatP50, low.LatP50)
	}
	// Batching absorbs the same overload with bounded latency: the batched
	// p99 at the highest rate stays well under the unbatched p50 there.
	for _, r := range rows {
		if r.Config == "batched+pipelined" && r.Rate == high.Rate && r.LatP99 >= high.LatP50 {
			t.Errorf("batched+pipelined p99 %v at rate %d not under unbatched p50 %v",
				r.LatP99, r.Rate, high.LatP50)
		}
	}
}

// TestT12RecoveryMatrix pins the durable-state plane's headline: x-ability
// holds at rate 1.0 across the failure-density matrix with restarts on and
// off, the duplicate-replay audit stays clean, and the restart column
// actually does more stable-storage work (revived replicas replay and keep
// appending). The sync curve must not move verdicts — only virtual time.
func TestT12RecoveryMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery sweep skipped in -short mode")
	}
	rows := TableT12(1, 16, 0)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byOps := make(map[int]map[bool]T12Row)
	for _, r := range rows {
		if r.XAbleRate != 1 || r.RepliedRate != 1 {
			t.Errorf("ops %d restarts %v: x-able %.4f replied %.4f, want 1.0",
				r.Ops, r.Restarts, r.XAbleRate, r.RepliedRate)
		}
		if r.DupRuns != 0 {
			t.Errorf("ops %d restarts %v: %d duplicate-replay runs, want 0", r.Ops, r.Restarts, r.DupRuns)
		}
		if r.MeanWALAppends <= 0 {
			t.Errorf("ops %d restarts %v: no WAL activity in a durable sweep", r.Ops, r.Restarts)
		}
		if byOps[r.Ops] == nil {
			byOps[r.Ops] = make(map[bool]T12Row)
		}
		byOps[r.Ops][r.Restarts] = r
	}
	for ops, pair := range byOps {
		if pair[true].MeanWALAppends <= pair[false].MeanWALAppends {
			t.Errorf("ops %d: restart column appends %.1f not above permanent-crash column %.1f",
				ops, pair[true].MeanWALAppends, pair[false].MeanWALAppends)
		}
	}
	sync := TableT12Sync(1, 6)
	if len(sync) != 4 {
		t.Fatalf("sync rows = %d, want 4", len(sync))
	}
	for _, r := range sync {
		if r.XAbleRate != 1 {
			t.Errorf("sync %v: x-able %.4f, want 1.0 — the tariff may cost time, never correctness", r.Sync, r.XAbleRate)
		}
	}
	if sync[0].MeanSyncTime != 0 {
		t.Errorf("zero tariff charged %v of sync time, want 0", sync[0].MeanSyncTime)
	}
	if sync[len(sync)-1].MeanSimTime <= sync[0].MeanSimTime {
		t.Errorf("1ms tariff sim time %v not above free-append sim time %v — durability priced at nothing",
			sync[len(sync)-1].MeanSimTime, sync[0].MeanSimTime)
	}
}

// TestT13CoverageShape pins the observability table's qualitative
// asymmetry (claim E16): deterministic fault plans collapse to a few
// interleaving classes while the randomized/partitioned rows saturate at
// (nearly) one class per seed with a hot tail — the signal that says
// where sweep budget buys new coverage.
func TestT13CoverageShape(t *testing.T) {
	const seeds = 48
	rows := TableT13(1, seeds, 0)
	if len(rows) < 4 {
		t.Fatalf("T13 rows = %d, want at least 4", len(rows))
	}
	byName := map[string]T13Row{}
	for _, r := range rows {
		byName[r.Scenario] = r
		if r.Seeds != seeds {
			t.Errorf("%s: folded %d runs, want %d", r.Scenario, r.Seeds, seeds)
		}
		if r.Classes < 1 || r.Classes > r.Seeds {
			t.Errorf("%s: %d classes out of range [1,%d]", r.Scenario, r.Classes, r.Seeds)
		}
		if r.SubmitsP50 < 1 {
			t.Errorf("%s: submit counter silent (p50 %d)", r.Scenario, r.SubmitsP50)
		}
		if r.LatP50 <= 0 {
			t.Errorf("%s: no latency mass (p50 %v)", r.Scenario, r.LatP50)
		}
	}
	nice, rand := byName["nice"], byName["random-faults"]
	if nice.Classes*2 >= seeds {
		t.Errorf("nice visits %d/%d classes — deterministic plan should collapse", nice.Classes, seeds)
	}
	if rand.Classes*2 <= seeds {
		t.Errorf("random-faults visits %d/%d classes — randomized plan should spread", rand.Classes, seeds)
	}
	if rand.TailNewRate <= nice.TailNewRate {
		t.Errorf("tail new-class rate: random-faults %.2f not above nice %.2f",
			rand.TailNewRate, nice.TailNewRate)
	}
	// The table is a deterministic function of (seed, seeds).
	again := TableT13(1, seeds, 1)
	if !reflect.DeepEqual(rows, again) {
		t.Errorf("T13 not deterministic across worker counts:\n%+v\nvs\n%+v", rows, again)
	}
}

// TestT14TotalLossMatrix pins the total-loss plane's headline (claim
// E17): deepening the outage regime from minority to majority to total
// moves none of the verdict columns — x-able 1.0, replied 1.0, zero
// duplicate-replay runs — while compaction visibly fires (live records
// strictly below appends). The snapshot curve must price the bound in
// virtual time only.
func TestT14TotalLossMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("total-loss sweep skipped in -short mode")
	}
	rows := TableT14(1, 16, 0)
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	regimes := map[string]bool{}
	for _, r := range rows {
		regimes[r.Regime] = true
		if r.XAbleRate != 1 || r.RepliedRate != 1 {
			t.Errorf("%s ops %d: x-able %.4f replied %.4f, want 1.0",
				r.Regime, r.Ops, r.XAbleRate, r.RepliedRate)
		}
		if r.DupRuns != 0 {
			t.Errorf("%s ops %d: %d duplicate-replay runs, want 0", r.Regime, r.Ops, r.DupRuns)
		}
		if r.MeanWALAppends <= 0 {
			t.Errorf("%s ops %d: no WAL activity in a durable sweep", r.Regime, r.Ops)
		}
		if r.MeanCompactions <= 0 {
			t.Errorf("%s ops %d: compaction never fired at threshold 8", r.Regime, r.Ops)
		}
		if r.MeanLiveRecords >= r.MeanWALAppends {
			t.Errorf("%s ops %d: live records %.1f not below appends %.1f — the log is not bounded",
				r.Regime, r.Ops, r.MeanLiveRecords, r.MeanWALAppends)
		}
	}
	for _, want := range []string{"minority", "majority", "total"} {
		if !regimes[want] {
			t.Errorf("regime %q missing from the matrix", want)
		}
	}
	snap := TableT14Snap(1, 6)
	if len(snap) != 4 {
		t.Fatalf("snap rows = %d, want 4", len(snap))
	}
	for _, r := range snap {
		if r.XAbleRate != 1 {
			t.Errorf("snap %v: x-able %.4f, want 1.0 — the tariff may cost time, never correctness", r.Snap, r.XAbleRate)
		}
		if r.MeanCompactions <= 0 {
			t.Errorf("snap %v: compaction never fired", r.Snap)
		}
	}
	if snap[0].MeanSyncTime != 0 {
		t.Errorf("zero tariff charged %v of sync time, want 0", snap[0].MeanSyncTime)
	}
	if last := snap[len(snap)-1]; last.MeanSimTime <= snap[0].MeanSimTime || last.MeanSyncTime <= 0 {
		t.Errorf("1ms snapshot tariff (sync %v, sim %v) not priced above the free point (sim %v)",
			last.MeanSyncTime, last.MeanSimTime, snap[0].MeanSimTime)
	}
}
