package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Stat is one metric's distribution across a sweep's runs: nearest-rank
// percentiles and extremes over the per-seed values, folded in seed
// order so the rollup is deterministic.
type Stat struct {
	Name string
	P50  int64
	P99  int64
	Max  int64
	Mean float64
}

// Rollup aggregates per-run snapshots across a sweep: a Stat per
// counter/gauge/latency series, plus the schedule-space coverage
// report.
type Rollup struct {
	Runs  int
	Stats []Stat

	// Coverage: how much schedule space the sweep visited. Classes is
	// the number of distinct interleaving fingerprints, Singletons how
	// many were seen exactly once, and TailNewRate the fraction of the
	// last 10% of runs (in seed order) that still discovered a new
	// class — a saturation signal: near 0 means more seeds are revisits,
	// near 1 means the space is far from exhausted.
	Classes     int
	Singletons  int
	TailNewRate float64
}

// quantile is nearest-rank over a sorted slice.
func quantile(sorted []int64, q int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*q + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func statOf(name string, vals []int64) Stat {
	var sum int64
	for _, v := range vals {
		sum += v
	}
	sorted := make([]int64, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := Stat{Name: name, P50: quantile(sorted, 50), P99: quantile(sorted, 99)}
	if n := len(sorted); n > 0 {
		s.Max = sorted[n-1]
		s.Mean = float64(sum) / float64(n)
	}
	return s
}

// NewRollup folds per-run snapshots (in seed order; nils are skipped)
// into the sweep-level distribution per metric plus the coverage
// report.
func NewRollup(snaps []*Snapshot) *Rollup {
	runs := make([]*Snapshot, 0, len(snaps))
	for _, s := range snaps {
		if s != nil {
			runs = append(runs, s)
		}
	}
	r := &Rollup{Runs: len(runs)}
	if len(runs) == 0 {
		return r
	}

	vals := make([]int64, len(runs))
	for c := Counter(0); c < NumCounters; c++ {
		for i, s := range runs {
			vals[i] = s.Counters[c]
		}
		r.Stats = append(r.Stats, statOf(c.Name(), vals))
	}
	for g := Gauge(0); g < NumGauges; g++ {
		for i, s := range runs {
			vals[i] = s.Gauges[g]
		}
		r.Stats = append(r.Stats, statOf(g.Name(), vals))
	}
	for _, series := range []struct {
		name string
		get  func(*Snapshot) int64
	}{
		{"lat.p50_ns", func(s *Snapshot) int64 { return s.LatP50NS }},
		{"lat.p99_ns", func(s *Snapshot) int64 { return s.LatP99NS }},
		{"lat.max_ns", func(s *Snapshot) int64 { return s.LatMaxNS }},
		{"recovery.count", func(s *Snapshot) int64 { return s.RecCount }},
		{"recovery.p50_ns", func(s *Snapshot) int64 { return s.RecP50NS }},
		{"recovery.p99_ns", func(s *Snapshot) int64 { return s.RecP99NS }},
		{"recovery.max_ns", func(s *Snapshot) int64 { return s.RecMaxNS }},
	} {
		for i, s := range runs {
			vals[i] = series.get(s)
		}
		r.Stats = append(r.Stats, statOf(series.name, vals))
	}

	// Coverage: distinct fingerprints, singletons, and the new-class
	// rate over the last 10% of runs in seed order.
	seen := make(map[uint64]int, len(runs))
	tailStart := len(runs) - (len(runs)+9)/10
	tailNew := 0
	for i, s := range runs {
		if seen[s.Coverage] == 0 && i >= tailStart {
			tailNew++
		}
		seen[s.Coverage]++
	}
	r.Classes = len(seen)
	for _, n := range seen {
		if n == 1 {
			r.Singletons++
		}
	}
	if tail := len(runs) - tailStart; tail > 0 {
		r.TailNewRate = float64(tailNew) / float64(tail)
	}
	return r
}

// Stat returns the named metric's sweep distribution, or a zero Stat
// when the rollup is nil or the name unknown — table generators pick
// columns by schema name without caring whether the series fired.
func (r *Rollup) Stat(name string) Stat {
	if r != nil {
		for _, s := range r.Stats {
			if s.Name == name {
				return s
			}
		}
	}
	return Stat{Name: name}
}

// String renders the rollup as the sweep summary's metrics section:
// one aligned row per metric with non-zero mass, then the coverage
// line.
func (r *Rollup) String() string {
	if r == nil || r.Runs == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "metrics over %d runs (p50 / p99 / max / mean):\n", r.Runs)
	for _, s := range r.Stats {
		if s.Max == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-26s %10d %10d %10d %12.1f\n", s.Name, s.P50, s.P99, s.Max, s.Mean)
	}
	fmt.Fprintf(&b, "coverage: %d distinct interleaving classes (%d singletons), tail new-class rate %.2f\n",
		r.Classes, r.Singletons, r.TailNewRate)
	return b.String()
}
