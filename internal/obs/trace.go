package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// EventKind discriminates trace events. Spans are async-style (matched
// by ID, not stack nesting) because one server interleaves many
// requests: Chrome's synchronous B/E stack would mis-nest them, the
// async b/e pairs render each request as its own track row.
type EventKind uint8

const (
	KindBegin EventKind = iota
	KindEnd
	KindInstant
	KindFlowStart
	KindFlowEnd
)

// Event is one flat trace record: a virtual timestamp, the process it
// happened on, a constant operation name, an optional argument (request
// ID, round number — strings that already exist at the call site, so
// recording allocates nothing), and the span/flow pairing ID.
type Event struct {
	At   time.Duration
	Kind EventKind
	Proc string
	Name string
	Arg  string
	ID   int64
}

// DefaultTraceCap bounds the event ring. A nice closed-loop run emits a
// few hundred events; a saturated open-loop run a few tens of
// thousands. Past the cap events are counted as dropped, never
// reallocated — tracing has a fixed memory bill.
const DefaultTraceCap = 1 << 16

// Trace is the per-run span recorder. Like Metrics it is
// nil-receiver-safe: a nil *Trace records nothing at zero cost. When
// installed, appends go into a preallocated ring under a mutex — the
// virtual clock executes events one at a time, so the mutex is -race
// hygiene and the append order (and therefore the export) is
// deterministic per seed.
type Trace struct {
	mu      sync.Mutex
	events  []Event
	dropped int64
	nextID  int64
}

// NewTrace returns an installed recorder with the given event capacity
// (DefaultTraceCap if n <= 0).
func NewTrace(n int) *Trace {
	if n <= 0 {
		n = DefaultTraceCap
	}
	return &Trace{events: make([]Event, 0, n)}
}

// Reset clears the ring for reuse across runs. Safe on nil.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.dropped = 0
	t.nextID = 0
	t.mu.Unlock()
}

func (t *Trace) push(e Event) {
	t.mu.Lock()
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, e)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Begin opens a span and returns its pairing ID (0 on a nil trace).
func (t *Trace) Begin(at time.Duration, proc, name, arg string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, Event{At: at, Kind: KindBegin, Proc: proc, Name: name, Arg: arg, ID: id})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	return id
}

// End closes the span opened under id. Safe on nil.
func (t *Trace) End(at time.Duration, proc, name string, id int64) {
	if t == nil {
		return
	}
	t.push(Event{At: at, Kind: KindEnd, Proc: proc, Name: name, ID: id})
}

// Instant records a point event. Safe on nil.
func (t *Trace) Instant(at time.Duration, proc, name, arg string) {
	if t == nil {
		return
	}
	t.push(Event{At: at, Kind: KindInstant, Proc: proc, Name: name, Arg: arg})
}

// FlowStart opens a message-delivery edge at the sender and returns its
// pairing ID (0 on a nil trace).
func (t *Trace) FlowStart(at time.Duration, proc, name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, Event{At: at, Kind: KindFlowStart, Proc: proc, Name: name, ID: id})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	return id
}

// FlowEnd closes a delivery edge at the receiver. Safe on nil (and on
// id 0, the nil-trace sentinel).
func (t *Trace) FlowEnd(at time.Duration, proc, name string, id int64) {
	if t == nil || id == 0 {
		return
	}
	t.push(Event{At: at, Kind: KindFlowEnd, Proc: proc, Name: name, ID: id})
}

// Len reports recorded events; Dropped reports events past capacity.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped reports events discarded at the capacity cap.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// jsonEscape is the minimal JSON string encoder for the writer —
// strconv.Quote's escaping rules are a superset of JSON's for the
// ASCII identifiers that appear in traces.
func jsonEscape(s string) string { return strconv.Quote(s) }

// WriteJSON exports the recording as Chrome trace-event JSON (the
// Perfetto-loadable "JSON Array with metadata" form). Timestamps are
// virtual microseconds with nanosecond decimals; processes become
// named threads under one pid in first-appearance order; spans are
// async b/e pairs and delivery edges are s/f flow pairs. The output is
// a pure function of the recording, so equal seeds yield byte-equal
// files.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		if _, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`); err != nil {
			return err
		}
		return nil
	}
	t.mu.Lock()
	events := t.events
	dropped := t.dropped
	t.mu.Unlock()

	// Thread IDs: interned per process in first-appearance order.
	tids := make(map[string]int)
	var order []string
	for i := range events {
		if _, ok := tids[events[i].Proc]; !ok {
			tids[events[i].Proc] = len(tids) + 1
			order = append(order, events[i].Proc)
		}
	}

	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) error {
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		_, err := fmt.Fprintf(w, sep+format, args...)
		return err
	}
	for _, p := range order {
		if err := emit(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			tids[p], jsonEscape(p)); err != nil {
			return err
		}
	}
	for i := range events {
		e := &events[i]
		ts := int64(e.At) / 1e3
		frac := int64(e.At) % 1e3
		tid := tids[e.Proc]
		var err error
		switch e.Kind {
		case KindBegin:
			err = emit(`{"ph":"b","cat":"req","id":"0x%x","pid":1,"tid":%d,"ts":%d.%03d,"name":%s,"args":{"arg":%s}}`,
				e.ID, tid, ts, frac, jsonEscape(e.Name), jsonEscape(e.Arg))
		case KindEnd:
			err = emit(`{"ph":"e","cat":"req","id":"0x%x","pid":1,"tid":%d,"ts":%d.%03d,"name":%s}`,
				e.ID, tid, ts, frac, jsonEscape(e.Name))
		case KindInstant:
			err = emit(`{"ph":"i","s":"t","pid":1,"tid":%d,"ts":%d.%03d,"name":%s,"args":{"arg":%s}}`,
				tid, ts, frac, jsonEscape(e.Name), jsonEscape(e.Arg))
		case KindFlowStart:
			err = emit(`{"ph":"s","cat":"msg","id":"0x%x","pid":1,"tid":%d,"ts":%d.%03d,"name":%s}`,
				e.ID, tid, ts, frac, jsonEscape(e.Name))
		case KindFlowEnd:
			err = emit(`{"ph":"f","bp":"e","cat":"msg","id":"0x%x","pid":1,"tid":%d,"ts":%d.%03d,"name":%s}`,
				e.ID, tid, ts, frac, jsonEscape(e.Name))
		}
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":\"%d\"}}", dropped)
	return err
}

// kindNames renders event kinds for the text form.
var kindNames = [...]string{
	KindBegin:     "begin",
	KindEnd:       "end",
	KindInstant:   "!",
	KindFlowStart: "send",
	KindFlowEnd:   "recv",
}

// RenderText returns the recording as compact text lines, one per
// event, in timestamp order (stable on record order for ties) — the
// form the shrinker splices into MinTrace renders.
func (t *Trace) RenderText() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := make([]Event, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	lines := make([]string, 0, len(events))
	for i := range events {
		e := &events[i]
		line := fmt.Sprintf("t=%-12v %-4s %-5s %s", e.At, e.Proc, kindNames[e.Kind], e.Name)
		if e.Arg != "" {
			line += " " + e.Arg
		}
		lines = append(lines, line)
	}
	return lines
}
