package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// String renders the snapshot's non-zero slots, one per line — the
// single-run -metrics table. Zero counters are elided so a quiet run
// prints a short table, not the whole schema.
func (s *Snapshot) String() string {
	if s == nil {
		return "(no metrics)"
	}
	var b strings.Builder
	for c := Counter(0); c < NumCounters; c++ {
		if v := s.Counters[c]; v != 0 {
			fmt.Fprintf(&b, "%-26s %12d\n", c.Name(), v)
		}
	}
	for g := Gauge(0); g < NumGauges; g++ {
		if v := s.Gauges[g]; v != 0 {
			fmt.Fprintf(&b, "%-26s %12d\n", g.Name(), v)
		}
	}
	if s.LatCount > 0 {
		fmt.Fprintf(&b, "%-26s %12d\n", "lat.count", s.LatCount)
		fmt.Fprintf(&b, "%-26s %12v\n", "lat.p50", time.Duration(s.LatP50NS))
		fmt.Fprintf(&b, "%-26s %12v\n", "lat.p99", time.Duration(s.LatP99NS))
		fmt.Fprintf(&b, "%-26s %12v\n", "lat.max", time.Duration(s.LatMaxNS))
	}
	fmt.Fprintf(&b, "%-26s %16x\n", "coverage.class", s.Coverage)
	return b.String()
}

// MarshalJSON emits a self-describing object keyed by slot name.
// encoding/json sorts map keys, so equal snapshots marshal to byte-equal
// JSON — the property the determinism gates diff on.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	m := make(map[string]any, int(NumCounters)+int(NumGauges)+6)
	for c := Counter(0); c < NumCounters; c++ {
		m[c.Name()] = s.Counters[c]
	}
	for g := Gauge(0); g < NumGauges; g++ {
		m[g.Name()] = s.Gauges[g]
	}
	m["lat.count"] = s.LatCount
	m["lat.sum_ns"] = s.LatSumNS
	m["lat.max_ns"] = s.LatMaxNS
	m["lat.p50_ns"] = s.LatP50NS
	m["lat.p99_ns"] = s.LatP99NS
	m["coverage.class"] = fmt.Sprintf("%016x", s.Coverage)
	return json.Marshal(m)
}
