// Package obs is the observability plane: virtual-time metrics, causal
// request traces, and schedule-space coverage fingerprints. It is a leaf
// package (stdlib only) so every layer — simnet, consensus, core, wal,
// fd, scenario — can import it without cycles.
//
// The plane is off-by-default and zero-cost when off: every method is
// nil-receiver-safe, so instrumented code holds a possibly-nil *Metrics
// or *Trace and calls through unconditionally. A nil receiver returns
// before touching any state, which the compiler reduces to a predictable
// branch — no map hashing, no label allocation, no interface boxing on
// any hot path. When a registry is installed, counters are dense-index
// atomic slots (the same discipline as simnet's interned process
// indexes) and histogram observation is a bits.Len64 bucket bump.
//
// All timestamps are virtual: metrics and traces are stamped from the
// simulation clock, never the wall clock, so observation cannot perturb
// determinism. Equal seeds produce byte-equal snapshots and trace
// exports.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a dense index into the metrics registry. The enum is the
// registry's schema: adding a counter means adding an index and a name,
// nothing else.
type Counter int

const (
	// Message deliveries by type, counted at simnet send.
	MsgSubmit Counter = iota
	MsgResult
	MsgAnnounce
	MsgHeartbeat
	MsgCons
	MsgOther
	MsgDropped // sends lost to partitions, crashes, drop faults, or replay

	// Consensus interior: round starts, timeout retransmits, stale-round
	// catch-ups, proposals entering the funnel, first-receipt decisions.
	ConsRounds
	ConsRetransmits
	ConsCatchUps
	ConsProposals
	ConsDecisions

	// Batch plane: slots formed, requests batched.
	BatchSlots
	BatchReqs

	// Durable plane: WAL appends, total sync-tariff time (ns), snapshot
	// installs and the bytes they wrote/reclaimed, torn-tail drops, and
	// records replayed at recovery.
	WALAppends
	WALSyncNS
	WALCompactions
	WALSnapshotBytes
	WALCompactedBytes
	WALTorn
	WALReplayed

	// Failure-detector transitions.
	FDSuspicions
	FDUnsuspicions

	// Request lifecycle: submits sent, replies accepted, client
	// failovers to a new server, cleaner takeovers, server restarts.
	ReqSubmitted
	ReqReplied
	ReqFailovers
	Takeovers
	Restarts

	NumCounters
)

// counterNames is indexed by Counter and is the stable, human- and
// machine-readable schema for snapshots and rollups.
var counterNames = [NumCounters]string{
	MsgSubmit:         "msg.submit",
	MsgResult:         "msg.result",
	MsgAnnounce:       "msg.announce",
	MsgHeartbeat:      "msg.heartbeat",
	MsgCons:           "msg.cons",
	MsgOther:          "msg.other",
	MsgDropped:        "msg.dropped",
	ConsRounds:        "cons.rounds",
	ConsRetransmits:   "cons.retransmits",
	ConsCatchUps:      "cons.catchups",
	ConsProposals:     "cons.proposals",
	ConsDecisions:     "cons.decisions",
	BatchSlots:        "batch.slots",
	BatchReqs:         "batch.reqs",
	WALAppends:        "wal.appends",
	WALSyncNS:         "wal.sync_ns",
	WALCompactions:    "wal.compactions",
	WALSnapshotBytes:  "wal.snapshot_bytes",
	WALCompactedBytes: "wal.compacted_bytes",
	WALTorn:           "wal.torn",
	WALReplayed:       "wal.replayed",
	FDSuspicions:      "fd.suspicions",
	FDUnsuspicions:    "fd.unsuspicions",
	ReqSubmitted:      "req.submitted",
	ReqReplied:        "req.replied",
	ReqFailovers:      "req.failovers",
	Takeovers:         "req.takeovers",
	Restarts:          "srv.restarts",
}

// Name returns the counter's schema name.
func (c Counter) Name() string { return counterNames[c] }

// Gauge is a dense index into the registry's maximum-tracking slots.
type Gauge int

const (
	GaugePipelineDepth Gauge = iota // max slots in flight at once
	GaugeBatchMax                   // largest batch formed

	NumGauges
)

var gaugeNames = [NumGauges]string{
	GaugePipelineDepth: "batch.pipeline_depth_max",
	GaugeBatchMax:      "batch.size_max",
}

// Name returns the gauge's schema name.
func (g Gauge) Name() string { return gaugeNames[g] }

// latBuckets is the latency histogram's bucket count: power-of-two
// buckets indexed by bits.Len64(ns), so bucket i holds observations in
// [2^(i-1), 2^i) nanoseconds. 64 buckets cover every int64 duration.
const latBuckets = 64

// Metrics is the per-run registry. All slots are fixed-size arrays
// updated atomically; the struct allocates once at construction and is
// reused across runs via Reset (the sweep workers' recycling
// discipline). The zero *Metrics (nil) is a valid, free no-op registry.
type Metrics struct {
	counters [NumCounters]atomic.Int64
	gauges   [NumGauges]atomic.Int64

	// Request end-to-end latency, power-of-two buckets.
	latBucket [latBuckets]atomic.Int64
	latSum    atomic.Int64
	latCount  atomic.Int64
	latMax    atomic.Int64

	// Crash→recovered latency (virtual time from CrashServer to the
	// restarted replica's Start returning), same bucket scheme.
	recBucket [latBuckets]atomic.Int64
	recSum    atomic.Int64
	recCount  atomic.Int64
	recMax    atomic.Int64

	// Schedule-space coverage: a streaming order-dependent hash over the
	// run's delivery sequence. Deliveries execute one at a time on the
	// virtual clock's pump, so the sequence — and the hash — is
	// deterministic per seed. The mutex is for -race hygiene across the
	// pump's worker goroutines, not for ordering.
	covMu sync.Mutex
	cov   uint64
}

// NewMetrics returns an installed (non-nil, counting) registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Inc bumps a counter by one. Safe on a nil receiver (no-op).
func (m *Metrics) Inc(c Counter) {
	if m == nil {
		return
	}
	m.counters[c].Add(1)
}

// Add bumps a counter by n. Safe on a nil receiver (no-op).
func (m *Metrics) Add(c Counter, n int64) {
	if m == nil {
		return
	}
	m.counters[c].Add(n)
}

// SetMax raises a maximum-tracking gauge to v if v exceeds the current
// value. Safe on a nil receiver (no-op).
func (m *Metrics) SetMax(g Gauge, v int64) {
	if m == nil {
		return
	}
	slot := &m.gauges[g]
	for {
		cur := slot.Load()
		if v <= cur || slot.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Observe records one end-to-end request latency. Safe on a nil
// receiver (no-op).
func (m *Metrics) Observe(d time.Duration) {
	if m == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	m.latBucket[bits.Len64(uint64(ns))&(latBuckets-1)].Add(1)
	m.latSum.Add(ns)
	m.latCount.Add(1)
	for {
		cur := m.latMax.Load()
		if ns <= cur || m.latMax.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// ObserveRecovery records one crash→recovered latency. Safe on a nil
// receiver (no-op).
func (m *Metrics) ObserveRecovery(d time.Duration) {
	if m == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	m.recBucket[bits.Len64(uint64(ns))&(latBuckets-1)].Add(1)
	m.recSum.Add(ns)
	m.recCount.Add(1)
	for {
		cur := m.recMax.Load()
		if ns <= cur || m.recMax.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Cover folds one delivery event into the run's interleaving-class
// fingerprint: the interned sender index, receiver index, and message
// class, mixed with a splitmix64-style step. Order-dependent by design —
// two runs land in the same class exactly when their delivery sequences
// match. Safe on a nil receiver (no-op).
func (m *Metrics) Cover(from, to int32, class uint8) {
	if m == nil {
		return
	}
	x := uint64(uint32(from))<<40 | uint64(uint32(to))<<8 | uint64(class)
	m.covMu.Lock()
	h := m.cov ^ x
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	m.cov = h
	m.covMu.Unlock()
}

// Reset clears every slot for reuse across runs (the sweep workers'
// per-seed recycling). Safe on a nil receiver (no-op).
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	for i := range m.counters {
		m.counters[i].Store(0)
	}
	for i := range m.gauges {
		m.gauges[i].Store(0)
	}
	for i := range m.latBucket {
		m.latBucket[i].Store(0)
	}
	m.latSum.Store(0)
	m.latCount.Store(0)
	m.latMax.Store(0)
	for i := range m.recBucket {
		m.recBucket[i].Store(0)
	}
	m.recSum.Store(0)
	m.recCount.Store(0)
	m.recMax.Store(0)
	m.covMu.Lock()
	m.cov = 0
	m.covMu.Unlock()
}

// ClassOf maps a simnet message type string to its coverage class and
// counter. The switch is the no-map classifier: type strings are
// compile-time constants at every send site, so this is a handful of
// length+byte compares, never a hash.
func ClassOf(typ string) (uint8, Counter) {
	switch typ {
	case "submit", "pb-submit":
		return 1, MsgSubmit
	case "result", "pb-result":
		return 2, MsgResult
	case "announce", "pb-processed", "ab-sequenced":
		return 3, MsgAnnounce
	case "heartbeat":
		return 4, MsgHeartbeat
	case "cons":
		return 5, MsgCons
	}
	return 0, MsgOther
}

// Snapshot is a flat, comparable-free copy of the registry at one
// virtual instant. Percentiles are derived from the power-of-two
// buckets at snapshot time (upper bucket bound, a deterministic
// overestimate of at most 2x).
type Snapshot struct {
	Counters [NumCounters]int64
	Gauges   [NumGauges]int64

	LatCount int64
	LatSumNS int64
	LatMaxNS int64
	LatP50NS int64
	LatP99NS int64

	// Crash→recovered latency distribution (zero when nothing restarted).
	RecCount int64
	RecSumNS int64
	RecMaxNS int64
	RecP50NS int64
	RecP99NS int64

	Coverage uint64
}

// Snapshot copies the registry. Call it at a pinned virtual instant
// (the settle horizon, while attached to the clock) so concurrent
// unwinding cannot smear the numbers. A nil receiver returns nil.
func (m *Metrics) Snapshot() *Snapshot {
	if m == nil {
		return nil
	}
	s := &Snapshot{}
	for i := range m.counters {
		s.Counters[i] = m.counters[i].Load()
	}
	for i := range m.gauges {
		s.Gauges[i] = m.gauges[i].Load()
	}
	s.LatCount = m.latCount.Load()
	s.LatSumNS = m.latSum.Load()
	s.LatMaxNS = m.latMax.Load()
	s.LatP50NS = m.latQuantile(&m.latBucket, m.latMax.Load(), 50, s.LatCount)
	s.LatP99NS = m.latQuantile(&m.latBucket, m.latMax.Load(), 99, s.LatCount)
	s.RecCount = m.recCount.Load()
	s.RecSumNS = m.recSum.Load()
	s.RecMaxNS = m.recMax.Load()
	s.RecP50NS = m.latQuantile(&m.recBucket, m.recMax.Load(), 50, s.RecCount)
	s.RecP99NS = m.latQuantile(&m.recBucket, m.recMax.Load(), 99, s.RecCount)
	m.covMu.Lock()
	s.Coverage = m.cov
	m.covMu.Unlock()
	return s
}

// latQuantile returns the upper bound of the bucket holding the q-th
// percentile observation (nearest-rank over the bucketed counts).
func (m *Metrics) latQuantile(buckets *[latBuckets]atomic.Int64, max, q, count int64) int64 {
	if count == 0 {
		return 0
	}
	rank := (count*q + 99) / 100
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range buckets {
		seen += buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return 1 << i // upper bound of [2^(i-1), 2^i)
		}
	}
	return max
}

// Run bundles the optional per-run observability handles threaded
// through an execution. Either field may be nil independently.
type Run struct {
	Metrics *Metrics
	Trace   *Trace
}
