package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestHotPathAllocFree pins the metrics hot path at zero allocations:
// counter increment, gauge max, histogram observe, and coverage mix are
// the operations that run inside simnet sends and protocol loops, so
// any allocation here multiplies by every message of every run.
func TestHotPathAllocFree(t *testing.T) {
	m := NewMetrics()
	if avg := testing.AllocsPerRun(1000, func() { m.Inc(MsgCons) }); avg != 0 {
		t.Errorf("Inc allocates %.1f objects/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { m.Add(BatchReqs, 7) }); avg != 0 {
		t.Errorf("Add allocates %.1f objects/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { m.SetMax(GaugeBatchMax, 9) }); avg != 0 {
		t.Errorf("SetMax allocates %.1f objects/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { m.Observe(123 * time.Microsecond) }); avg != 0 {
		t.Errorf("Observe allocates %.1f objects/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { m.Cover(1, 2, 5) }); avg != 0 {
		t.Errorf("Cover allocates %.1f objects/op, want 0", avg)
	}
}

// TestNilRegistryAllocFree pins the off-by-default contract: every
// operation on a nil registry and nil trace is a no-op with zero
// allocations, so instrumented code needs no enabled-checks.
func TestNilRegistryAllocFree(t *testing.T) {
	var m *Metrics
	var tr *Trace
	if avg := testing.AllocsPerRun(1000, func() {
		m.Inc(MsgSubmit)
		m.Add(WALSyncNS, 100)
		m.SetMax(GaugePipelineDepth, 3)
		m.Observe(time.Millisecond)
		m.Cover(0, 1, 2)
		id := tr.Begin(0, "p0", "req", "r1")
		tr.Instant(0, "p0", "commit", "r1")
		tr.End(0, "p0", "req", id)
		tr.FlowEnd(0, "p0", "msg", tr.FlowStart(0, "p1", "msg"))
	}); avg != 0 {
		t.Errorf("nil obs ops allocate %.1f objects/op, want 0", avg)
	}
	if m.Snapshot() != nil {
		t.Error("nil Metrics snapshot should be nil")
	}
	m.Reset()
	tr.Reset()
}

// TestSnapshotArithmetic checks the derived histogram stats: bucketed
// percentiles are upper power-of-two bounds, count/sum/max exact.
func TestSnapshotArithmetic(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 99; i++ {
		m.Observe(1 * time.Microsecond) // bucket [2^10, 2^11)
	}
	m.Observe(1 * time.Millisecond) // the tail
	s := m.Snapshot()
	if s.LatCount != 100 {
		t.Fatalf("count = %d, want 100", s.LatCount)
	}
	if want := int64(99*1000 + 1000000); s.LatSumNS != want {
		t.Errorf("sum = %d, want %d", s.LatSumNS, want)
	}
	if s.LatMaxNS != 1000000 {
		t.Errorf("max = %d, want 1000000", s.LatMaxNS)
	}
	if s.LatP50NS < 1000 || s.LatP50NS > 2048 {
		t.Errorf("p50 = %d, want the [1µs, 2048ns] bucket bound", s.LatP50NS)
	}
	if s.LatP99NS > 2048 {
		t.Errorf("p99 = %d, want <= 2048 (99th observation is still 1µs)", s.LatP99NS)
	}

	m.Reset()
	if s2 := m.Snapshot(); s2.LatCount != 0 || s2.Counters[MsgSubmit] != 0 || s2.Coverage != 0 {
		t.Errorf("Reset left residue: %+v", s2)
	}
}

// TestCoverageOrderDependence checks the fingerprint separates
// different delivery orders but matches identical ones.
func TestCoverageOrderDependence(t *testing.T) {
	a, b, c := NewMetrics(), NewMetrics(), NewMetrics()
	a.Cover(0, 1, 5)
	a.Cover(1, 0, 5)
	b.Cover(1, 0, 5)
	b.Cover(0, 1, 5)
	c.Cover(0, 1, 5)
	c.Cover(1, 0, 5)
	if a.Snapshot().Coverage == b.Snapshot().Coverage {
		t.Error("swapped delivery order should change the fingerprint")
	}
	if a.Snapshot().Coverage != c.Snapshot().Coverage {
		t.Error("identical delivery order should match")
	}
}

// TestTraceJSONValid checks the exporter emits parseable Chrome
// trace-event JSON with the span, flow, and metadata shapes Perfetto
// expects, and that equal recordings are byte-equal.
func TestTraceJSONValid(t *testing.T) {
	record := func() *Trace {
		tr := NewTrace(64)
		id := tr.Begin(10*time.Microsecond, "c0", "req", "c0-1")
		f := tr.FlowStart(11*time.Microsecond, "c0", "submit")
		tr.FlowEnd(15*time.Microsecond, "p0", "submit", f)
		tr.Instant(20*time.Microsecond, "p0", "commit", "c0-1")
		tr.End(30*time.Microsecond, "c0", "req", id)
		return tr
	}
	var buf1, buf2 bytes.Buffer
	if err := record().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := record().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("equal recordings should export byte-equal JSON")
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf1.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf1.String())
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		phases[ph]++
		if _, ok := e["ts"]; ph != "M" && !ok {
			t.Errorf("event missing ts: %v", e)
		}
	}
	// 2 thread_name metadata (c0, p0) + b/e + s/f + i.
	for _, want := range []string{"M", "b", "e", "s", "f", "i"} {
		if phases[want] == 0 {
			t.Errorf("no %q events in export: %v", want, phases)
		}
	}
	if phases["M"] != 2 {
		t.Errorf("want 2 thread metadata events, got %d", phases["M"])
	}
}

// TestTraceCapDrops checks the ring never grows past capacity and
// counts the overflow.
func TestTraceCapDrops(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Instant(time.Duration(i), "p0", "tick", "")
	}
	if tr.Len() != 4 {
		t.Errorf("ring holds %d events, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
}

// TestRollup checks the sweep fold: per-metric nearest-rank stats and
// the coverage class counts, deterministic in seed order.
func TestRollup(t *testing.T) {
	var snaps []*Snapshot
	for i := 0; i < 10; i++ {
		s := &Snapshot{Coverage: uint64(i % 3)} // 3 classes, none singleton... 0,1,2 repeat
		s.Counters[MsgCons] = int64(i + 1)      // 1..10
		snaps = append(snaps, s)
	}
	snaps = append(snaps, nil) // skipped
	r := NewRollup(snaps)
	if r.Runs != 10 {
		t.Fatalf("runs = %d, want 10", r.Runs)
	}
	var cons *Stat
	for i := range r.Stats {
		if r.Stats[i].Name == "msg.cons" {
			cons = &r.Stats[i]
		}
	}
	if cons == nil {
		t.Fatal("no msg.cons stat")
	}
	if cons.P50 != 5 || cons.Max != 10 || cons.Mean != 5.5 {
		t.Errorf("msg.cons stat = %+v, want p50 5 max 10 mean 5.5", cons)
	}
	if r.Classes != 3 {
		t.Errorf("classes = %d, want 3", r.Classes)
	}
	if r.Singletons != 0 {
		t.Errorf("singletons = %d, want 0", r.Singletons)
	}
	// Tail = last 1 run (ceil(10/10)); its class (coverage 0) was seen
	// before, so no new class in the tail.
	if r.TailNewRate != 0 {
		t.Errorf("tail new-class rate = %v, want 0", r.TailNewRate)
	}
	if r.String() == "" {
		t.Error("rollup render should be non-empty")
	}
}
