// Package xability is a Go implementation of X-Ability: A Theory of
// Replication (Frølund & Guerraoui, PODC 2000).
//
// X-ability (exactly-once-ability) is a correctness criterion for
// replicated services: a replicated service is x-able when the actions it
// executes — possibly several times, by several replicas — appear to their
// environment to have been executed exactly once. The theory covers
// non-deterministic actions and actions with external side effects (calls
// to third-party services), which classical criteria for replication do
// not.
//
// The package exposes three layers:
//
//   - The calculus: events, histories, patterns, the reduction relation ⇒,
//     the x-able predicate, and history signatures (§2–§3 of the paper),
//     as a mechanical checker — see NewChecker.
//   - The protocol: the paper's general asynchronous replication algorithm
//     (§5), which drifts at run time between a primary-backup flavor and
//     an active-replication flavor — see NewService.
//   - The specification: requirements R1–R4 for x-able services (§4),
//     checked against concrete runs — see CheckRun.
//   - The scenario layer: declarative fault plans (crashes, partitions,
//     delay storms, suspicion pulses on the virtual clock), a registry of
//     named adversarial scenarios, and a parallel seed-sweep runner that
//     reports verdict distributions — see NewPlan, RunScenario, Sweep.
//   - The debugging layer: schedule recording and replay (every run is
//     fully determined by its scenario, seed, and delivery log) and a
//     delta-debugging shrinker that turns a failing sweep seed into a
//     locally minimal counterexample trace — see RunScenarioTraced,
//     Shrink, MinTrace.
//   - The sharding plane: a keyspace partitioned across many
//     independently replicated groups behind one router (x-ability is
//     closed under composition, so the deployment is x-able end to end),
//     with a merged per-shard + exactly-once-routing verifier — see
//     NewShardedService.
//
// Quickstart:
//
//	reg := xability.NewRegistry()
//	reg.MustRegister("greet", xability.Idempotent)
//
//	svc := xability.NewService(xability.ServiceConfig{
//		Replicas: 3,
//		Registry: reg,
//		Setup: func(m *xability.Machine) {
//			m.HandleIdempotent("greet", func(ctx *xability.Ctx) xability.Value {
//				return "hello, " + ctx.Req.Input
//			})
//		},
//	})
//	defer svc.Close()
//
//	reply := svc.Call(xability.NewRequest("greet", "world"))
//
// See the examples/ directory for complete programs, DESIGN.md for the
// paper-to-code map, and EXPERIMENTS.md for the reproduction results.
package xability

import (
	"xability/internal/action"
	"xability/internal/core"
	"xability/internal/env"
	"xability/internal/event"
	"xability/internal/reduce"
	"xability/internal/scenario"
	"xability/internal/schedule"
	"xability/internal/shard"
	"xability/internal/shrink"
	"xability/internal/sm"
	"xability/internal/trace"
	"xability/internal/vclock"
	"xability/internal/verify"
)

// Core vocabulary (§2.1, §3.1).
type (
	// Name identifies an action.
	Name = action.Name
	// Value is an action input or output value.
	Value = action.Value
	// Request pairs an action with an input value.
	Request = action.Request
	// Registry classifies actions as idempotent or undoable.
	Registry = action.Registry
	// Kind is an action's fault-tolerance class.
	Kind = action.Kind
)

// Action classes.
const (
	// Idempotent marks actions whose repeated execution has the side
	// effect of a single execution.
	Idempotent = action.KindIdempotent
	// Undoable marks actions that can be cancelled until committed.
	Undoable = action.KindUndoable
)

// Nil is the distinguished return value of cancel and commit actions.
const Nil = action.Nil

// Event calculus (§2.2–§2.3).
type (
	// Event is a start or completion event.
	Event = event.Event
	// History is a totally ordered event sequence.
	History = event.History
)

// S constructs a start event S(a, iv).
func S(a Name, iv Value) Event { return event.S(a, iv) }

// C constructs a completion event C(a, ov).
func C(a Name, ov Value) Event { return event.C(a, ov) }

// NewRegistry returns an empty action registry.
func NewRegistry() *Registry { return action.NewRegistry() }

// NewRequest builds a request.
func NewRequest(a Name, iv Value) Request { return action.NewRequest(a, iv) }

// Cancel and Commit derive the cancellation and commit action names of an
// undoable action (§3.1).
func Cancel(a Name) Name { return action.Cancel(a) }

// Commit derives the commit action name of an undoable action.
func Commit(a Name) Name { return action.Commit(a) }

// State machines (§2.1) and the environment.
type (
	// Machine is one replica's state machine.
	Machine = sm.Machine
	// Ctx is the execution context passed to action bodies.
	Ctx = sm.Ctx
	// Env is the third-party environment actions have side effects on.
	Env = env.Env
	// Observer is the run's event observer (§2.2).
	Observer = trace.Observer
)

// Checker is the mechanical x-ability checker: the reduction relation of
// Figure 4 plus the predicates built on it.
type Checker = reduce.Normalizer

// TargetSpec describes the failure-free histories of one request (§3.2).
type TargetSpec = reduce.TargetSpec

// NewChecker builds a checker over a vocabulary.
func NewChecker(reg *Registry) *Checker { return reduce.New(reg) }

// SpecFor derives the failure-free target of a request.
func SpecFor(reg *Registry, req Request) (TargetSpec, error) { return reduce.SpecFor(reg, req) }

// EventsOf is the paper's eventsof function (eqs. 21–22).
func EventsOf(reg *Registry, req Request, ov Value) (History, error) {
	return reduce.EventsOf(reg, req, ov)
}

// Run verification (§4).
type (
	// Run captures one execution for verification.
	Run = verify.Run
	// Report is the R1–R4 verdict.
	Report = verify.Report
)

// CheckRun verifies requirements R2–R4 against a run.
func CheckRun(run Run) Report { return verify.Check(run) }

// The replication protocol (§5).
type (
	// ServiceConfig configures a replicated service.
	ServiceConfig = core.ClusterConfig
	// Service is a running replicated service with its client stub.
	Service struct{ cluster *core.Cluster }
	// Clock is the service's notion of time (internal/vclock): virtual by
	// default, so simulated delays cost CPU instead of wall time and equal
	// seeds reproduce equal schedules. Set ServiceConfig.Net.Clock to
	// RealClock() for wall-clock behavior.
	Clock = vclock.Clock
)

// VirtualClock returns a fresh discrete-event clock — the default a service
// creates for itself when ServiceConfig.Net.Clock is nil.
func VirtualClock() Clock { return vclock.NewVirtual() }

// RealClock returns a wall-clock-backed Clock for runs that should take
// real time (demos, latency studies against the host timer).
func RealClock() Clock { return vclock.NewReal() }

// Consensus and detector substrate selectors.
const (
	// ConsensusLocal uses the linearizable objects the paper assumes.
	ConsensusLocal = core.ConsensusLocal
	// ConsensusCT uses the message-passing rotating-coordinator protocol.
	ConsensusCT = core.ConsensusCT
	// DetectorScripted uses test-controlled detectors.
	DetectorScripted = core.DetectorScripted
	// DetectorHeartbeat uses heartbeat-driven ◇P detectors.
	DetectorHeartbeat = core.DetectorHeartbeat
)

// NewService assembles and starts a replicated service on a simulated
// asynchronous network.
func NewService(cfg ServiceConfig) *Service {
	return &Service{cluster: core.NewCluster(cfg)}
}

// Call submits a request and retries until it succeeds (the client
// behavior R1 and R2 license).
func (s *Service) Call(req Request) Value {
	return s.cluster.Client.SubmitUntilSuccess(req)
}

// History returns the run's observed event history so far.
func (s *Service) History() History {
	s.cluster.Net.Quiesce()
	return s.cluster.Observer.History()
}

// Environment returns the service's third-party environment (for audits).
func (s *Service) Environment() *Env { return s.cluster.Env }

// Log returns the successfully submitted requests and replies.
func (s *Service) Log() ([]Request, []Value) { return s.cluster.Client.Log() }

// Attempts returns the number of submit attempts made.
func (s *Service) Attempts() int { return s.cluster.Client.Attempts() }

// Cluster exposes the underlying cluster for advanced scenarios (fault
// injection, per-replica access).
func (s *Service) Cluster() *core.Cluster { return s.cluster }

// The scenario layer (internal/scenario): declarative fault plans, a
// named-scenario registry, and the parallel seed-sweep runner.
type (
	// Scenario is one adversarial experiment, declaratively: protocol,
	// network, injected failures, fault plan, workload.
	Scenario = scenario.Scenario
	// Plan is a timed fault schedule (crashes, partitions, suspicion
	// pulses, delay storms) applied on the virtual clock.
	Plan = scenario.Plan
	// FaultTarget is the cluster surface a Plan drives.
	FaultTarget = scenario.Target
	// Outcome is the verdict of one scenario run.
	Outcome = scenario.Outcome
	// VerdictDistribution aggregates outcomes across a seed population.
	VerdictDistribution = scenario.VerdictDistribution
)

// Protocols a Scenario can deploy.
const (
	// ProtocolXAbility is the paper's protocol.
	ProtocolXAbility = scenario.XAbility
	// ProtocolPrimaryBackup is the [BMST93]-style baseline.
	ProtocolPrimaryBackup = scenario.PrimaryBackup
	// ProtocolActive is the [Sch93]-style baseline.
	ProtocolActive = scenario.Active
)

// NewPlan returns an empty fault plan; chain the *At builder methods to
// describe a schedule, then pass it to Service.Apply (or set it on a
// Scenario).
func NewPlan() *Plan { return scenario.NewPlan() }

// RegisterScenario adds a scenario to the process-wide registry; builtin
// scenarios (nice, crash-failover, partition, delay-storm, …) are
// pre-registered.
func RegisterScenario(sc Scenario) error { return scenario.Register(sc) }

// ScenarioByName looks a registered scenario up.
func ScenarioByName(name string) (Scenario, bool) { return scenario.Get(name) }

// ScenarioNames lists every registered scenario, sorted.
func ScenarioNames() []string { return scenario.Names() }

// RunScenario executes one scenario on one seed. Equal (scenario, seed)
// pairs yield equal outcomes.
func RunScenario(sc Scenario, seed int64) Outcome { return scenario.Execute(sc, seed) }

// Sweep executes a scenario once per seed across parallel workers (0
// selects GOMAXPROCS) and folds the outcomes into a deterministic verdict
// distribution. Runs are CPU-bound on the virtual clock, so populations of
// thousands are practical.
func Sweep(sc Scenario, seeds []int64, workers int) VerdictDistribution {
	return scenario.Sweep(sc, seeds, workers)
}

// SweepOptions tunes SweepWithOptions: worker count, and the
// ShrinkFailing knob that delta-debugs failing seeds into minimal
// counterexample traces attached to the distribution.
type SweepOptions = scenario.SweepOptions

// SweepWithOptions is Sweep with the full option set. With
// SweepOptions.ShrinkFailing, failing seeds come back as rendered minimal
// counterexample traces in VerdictDistribution.Counterexamples.
func SweepWithOptions(sc Scenario, seeds []int64, opts SweepOptions) VerdictDistribution {
	return scenario.SweepWithOptions(sc, seeds, opts)
}

// SweepSeeds returns n consecutive seeds starting at base — the standard
// seed population for Sweep.
func SweepSeeds(base int64, n int) []int64 { return scenario.Seeds(base, n) }

// The debugging layer (internal/schedule, internal/shrink): schedule
// record/replay and the delta-debugging shrinker.
type (
	// ScheduleLog is the recorded delivery schedule of one run: one entry
	// per send, with the link, virtual-time deadline, and drop/delay
	// verdict. A run is fully determined by (scenario, seed, log).
	ScheduleLog = schedule.Log
	// ScheduleEntry is one delivery decision of a recorded schedule.
	ScheduleEntry = schedule.Entry
	// Replay re-executes a recorded schedule, optionally edited: an Edit
	// may suppress, delay, or reorder individual deliveries.
	Replay = schedule.Replay
	// MinTrace is a minimized counterexample: the fault plan and delivery
	// schedule of a locally minimal failing run, with a deterministic
	// human-readable rendering (Render) and a replay spec (Replay) that
	// reproduces the failure.
	MinTrace = shrink.MinTrace
	// ShrinkOptions tunes Shrink (step budget, failure predicate).
	ShrinkOptions = shrink.Options
)

// NewScheduleLog returns an empty schedule log for RunScenarioTraced.
func NewScheduleLog() *ScheduleLog { return schedule.NewLog() }

// RunScenarioTraced is RunScenario with the schedule plane armed: when
// record is non-nil the run's delivery schedule is logged into it; when
// replay is non-nil the run re-executes the given log instead of drawing
// delays from the seed. Either may be nil.
func RunScenarioTraced(sc Scenario, seed int64, record *ScheduleLog, replay *Replay) Outcome {
	return scenario.ExecuteTraced(sc, seed, record, replay)
}

// Shrink delta-debugs the failing run of a scenario on one seed into a
// locally minimal counterexample trace: ddmin over the recorded delivery
// schedule plus greedy removal of fault-plan ops, re-running the scenario
// under replay after every edit and keeping the edits that preserve the
// failure. The result still fails when replayed, is 1-minimal (removing
// any single remaining delivery or fault op makes the failure disappear),
// and is deterministic across runs and hosts.
func Shrink(sc Scenario, seed int64, opt ShrinkOptions) (MinTrace, error) {
	return shrink.Shrink(sc, seed, opt)
}

// The sharding plane (internal/shard): a keyspace partitioned across many
// independently replicated x-able groups behind one facade. X-ability is
// closed under composition (§4's locality), so a deployment that routes
// every request to exactly one owning group is x-able end to end — the
// merged verifier checks both halves of that argument.
type (
	// ShardedConfig configures a sharded deployment: shard count, per-group
	// replication, substrates, per-shard machine setup, and the key
	// extractor the router partitions on.
	ShardedConfig = shard.Config
	// ShardedReport is the merged verdict: per-shard R2–R4 reports plus
	// the global exactly-once-routing audit.
	ShardedReport = shard.Report
	// Ring is the consistent-hash keyspace partitioner.
	Ring = shard.Ring
	// ShardKeyFunc extracts the routing key from a request.
	ShardKeyFunc = shard.KeyFunc
)

// NewRing builds a consistent-hash ring over the given shard count;
// vnodes of 0 selects the default virtual-node count.
func NewRing(shards, vnodes int) *Ring { return shard.NewRing(shards, vnodes) }

// ShardedService is a running sharded deployment with its routing client.
type ShardedService struct{ c *shard.Cluster }

// NewShardedService assembles and starts N replica groups — each an
// independent replicated service on its own simulated network — behind a
// keyspace router, all on one virtual clock.
func NewShardedService(cfg ShardedConfig) *ShardedService {
	return &ShardedService{c: shard.New(cfg)}
}

// Call routes the request to its owning group and submits it until it
// succeeds. Failover on crash or suspicion happens inside the owning
// group; the router never re-routes across groups.
func (s *ShardedService) Call(req Request) Value { return s.c.Router.Call(req) }

// CallAll routes a request batch and drives each group's subsequence
// concurrently on the shared virtual clock — the deployment's aggregate
// throughput mode. Replies come back in input order.
func (s *ShardedService) CallAll(reqs []Request) ([]Value, bool) {
	return s.c.Router.CallAll(reqs)
}

// Shards returns the deployment's group count; ShardOf the group index
// owning a request's key.
func (s *ShardedService) Shards() int             { return s.c.Shards() }
func (s *ShardedService) ShardOf(req Request) int { return s.c.Router.Owner(req) }

// History returns group shard's observed event history so far.
func (s *ShardedService) History(shardIdx int) History { return s.c.History(shardIdx) }

// Verify checks the whole deployment: each group's run against R2–R4 on
// its own history, plus the router's global exactly-once-routing audit.
func (s *ShardedService) Verify(reg *Registry) ShardedReport { return s.c.Verify(reg) }

// Apply schedules a fault plan against the deployment: unqualified ops
// strike every group at one virtual instant (correlated faults); the
// shard-qualified ops (Plan.CrashShardAt, Plan.PartitionShardsAt,
// Plan.StormShardsAt, Plan.OnShard, …) address single groups.
func (s *ShardedService) Apply(p *Plan) { p.ApplySharded(s.c) }

// Clock returns the deployment's shared clock.
func (s *ShardedService) Clock() Clock { return s.c.Clock() }

// Cluster exposes the underlying runtime for advanced scenarios
// (per-group fault surfaces, the ring, the router's routing log).
func (s *ShardedService) Cluster() *shard.Cluster { return s.c }

// Close shuts every group down.
func (s *ShardedService) Close() { s.c.Stop() }

// Apply schedules a fault plan against this service, relative to the
// current virtual time. Call it while the schedule is held (Clock().Enter
// before, Exit after the workload is submitted) so ops land at their
// declared offsets:
//
//	clk := svc.Clock()
//	clk.Enter()
//	svc.Apply(xability.NewPlan().CrashAt(2*time.Millisecond, 0))
//	reply := svc.Call(req)
//	clk.Exit()
func (s *Service) Apply(p *Plan) { p.Apply(s.cluster) }

// Clock returns the service's clock. Schedule fault injection on it
// (Clock().Go with Clock().Sleep) so scenarios land at fixed points of
// simulated time regardless of host speed.
func (s *Service) Clock() Clock { return s.cluster.Clock() }

// Verify checks the service's run so far against R2–R4.
func (s *Service) Verify(reg *Registry) Report {
	reqs, replies := s.Log()
	return CheckRun(Run{
		Registry:       reg,
		Requests:       reqs,
		Replies:        replies,
		History:        s.History(),
		SubmitAttempts: s.Attempts(),
	})
}

// Close shuts the service down.
func (s *Service) Close() { s.cluster.Stop() }
