// Benchmarks regenerating the experiment tables of EXPERIMENTS.md. Each
// BenchmarkT* corresponds to one table (and so to one claim in DESIGN.md
// §3); cmd/xbench prints the same rows in tabular form.
//
//	go test -bench=. -benchmem
package xability_test

import (
	"fmt"
	"testing"
	"time"

	"xability"
	"xability/internal/action"
	"xability/internal/baseline"
	"xability/internal/core"
	"xability/internal/exper"
	"xability/internal/reduce"
	"xability/internal/scenario"
	"xability/internal/simnet"
	"xability/internal/workload"
)

// BenchmarkT1VerdictMatrix regenerates Table T1 (claim E7): x-ability
// verdict and side-effect audit for the x-ability protocol (nice, crash
// failover, partition, delay storm) and the two baselines.
func BenchmarkT1VerdictMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exper.TableT1(int64(i + 1))
		if len(rows) != 7 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkT7Sweep measures the seed-sweep runner: 64 crash-failover
// schedules per iteration, folded into a verdict distribution.
func BenchmarkT7Sweep(b *testing.B) {
	sc, ok := scenario.Get("crash-failover")
	if !ok {
		b.Fatal("crash-failover not registered")
	}
	for i := 0; i < b.N; i++ {
		d := scenario.Sweep(sc, scenario.Seeds(int64(i*64+1), 64), 0)
		if d.XAbleRate() != 1.0 {
			b.Fatalf("x-able rate %.4f; failing %v", d.XAbleRate(), d.Failing)
		}
	}
}

// BenchmarkT2Spectrum regenerates Table T2 (claim E5): the run-time
// primary-backup ↔ active-replication spectrum under false suspicion.
func BenchmarkT2Spectrum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exper.TableT2(int64(i + 1))
		if rows[0].Executions != 1 {
			b.Fatalf("nice run executed %d times", rows[0].Executions)
		}
	}
}

// BenchmarkT3Cost regenerates Table T3 (claim E8): latency and message
// complexity per protocol and replication degree.
func BenchmarkT3Cost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exper.TableT3(int64(i+1), 10)
	}
}

// BenchmarkT4Consensus regenerates Table T4 (claim E9): assumed local
// consensus objects vs the message-passing protocol.
func BenchmarkT4Consensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exper.TableT4(int64(i+1), 20)
	}
}

// BenchmarkT6CheckerScale regenerates Table T6 (claim E10): greedy checker
// time across history sizes.
func BenchmarkT6CheckerScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exper.TableT6()
		for _, r := range rows {
			if !r.XAble {
				b.Fatal("synthetic history failed to verify")
			}
		}
	}
}

// --- Per-scenario protocol benches (finer-grained than the tables). ---

func benchProtocolRun(b *testing.B, mode core.ConsensusMode, requests int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		bank := workload.NewBank(4, 1000*requests)
		c := core.NewCluster(core.ClusterConfig{
			Replicas:  3,
			Seed:      int64(i + 1),
			Net:       simnet.Config{MaxDelay: 50 * time.Microsecond},
			Consensus: mode,
			Registry:  workload.Registry(),
			Setup:     bank.Setup(),
		})
		for _, r := range workload.Generate(workload.Spec{Requests: requests, Accounts: 4}, int64(i+1)) {
			c.Client.SubmitUntilSuccess(r)
		}
		c.Stop()
	}
}

// BenchmarkScenarioNiceLocal measures nice-run throughput with the assumed
// consensus objects (experiment E4's happy path).
func BenchmarkScenarioNiceLocal(b *testing.B) { benchProtocolRun(b, core.ConsensusLocal, 10) }

// BenchmarkScenarioNiceCT measures the same runs over the Chandra–Toueg
// substrate (E9 end-to-end).
func BenchmarkScenarioNiceCT(b *testing.B) { benchProtocolRun(b, core.ConsensusCT, 5) }

// BenchmarkScenarioCrashRecovery measures a crash-failover request
// end-to-end (E4's recovery path).
func BenchmarkScenarioCrashRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bank := workload.NewBank(1, 1000)
		c := core.NewCluster(core.ClusterConfig{
			Replicas: 3,
			Seed:     int64(i + 1),
			Net:      simnet.Config{MaxDelay: 50 * time.Microsecond},
			Registry: workload.Registry(),
			Setup:    bank.Setup(),
		})
		c.Env.SetFailures("debit", 1.0, 4, 0)
		clk := c.Clock()
		clk.Enter()
		clk.Go(func() {
			clk.Sleep(time.Millisecond)
			c.CrashServer(0)
			c.ClientSuspect("replica-0", true)
		})
		c.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct-0"))
		clk.Exit()
		c.Stop()
	}
}

// BenchmarkBaselinePrimaryBackup measures the primary-backup baseline on
// the T3 workload for comparison.
func BenchmarkBaselinePrimaryBackup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := baseline.NewCluster(baseline.ClusterConfig{
			Scheme: baseline.PrimaryBackup, Replicas: 3, Seed: int64(i + 1),
			Net:     simnet.Config{MaxDelay: 50 * time.Microsecond},
			Handler: func(req action.Request) action.Value { return "ok" },
		})
		for _, r := range workload.Generate(workload.Spec{Requests: 10, Accounts: 4}, int64(i+1)) {
			c.Client.SubmitUntilSuccess(r)
		}
		c.Stop()
	}
}

// BenchmarkBaselineActive measures the active-replication baseline.
func BenchmarkBaselineActive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := baseline.NewCluster(baseline.ClusterConfig{
			Scheme: baseline.Active, Replicas: 3, Seed: int64(i + 1),
			Net:     simnet.Config{MaxDelay: 50 * time.Microsecond},
			Handler: func(req action.Request) action.Value { return "ok" },
		})
		for _, r := range workload.Generate(workload.Spec{Requests: 10, Accounts: 4}, int64(i+1)) {
			c.Client.SubmitUntilSuccess(r)
		}
		c.Stop()
	}
}

// BenchmarkCheckerScale sweeps checker input sizes individually (the
// disaggregated form of T6), reporting events/op.
func BenchmarkCheckerScale(b *testing.B) {
	reg := workload.Registry()
	for _, requests := range []int{10, 100, 500} {
		for _, dup := range []int{1, 3} {
			h, specs := exper.SyntheticHistory(reg, requests, dup)
			b.Run(fmt.Sprintf("requests=%d/dup=%d", requests, dup), func(b *testing.B) {
				n := reduce.New(reg)
				b.ReportMetric(float64(len(h)), "events")
				for i := 0; i < b.N; i++ {
					if ok, _ := n.XAbleTo(h, specs); !ok {
						b.Fatal("not x-able")
					}
				}
			})
		}
	}
}

// BenchmarkFacadeCall measures one end-to-end Call through the public API.
func BenchmarkFacadeCall(b *testing.B) {
	reg := xability.NewRegistry()
	reg.MustRegister("ping", xability.Idempotent)
	svc := xability.NewService(xability.ServiceConfig{
		Replicas: 3,
		Seed:     1,
		Registry: reg,
		Setup: func(m *xability.Machine) {
			_ = m.HandleIdempotent("ping", func(ctx *xability.Ctx) xability.Value { return "pong" })
		},
	})
	defer svc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := svc.Call(xability.NewRequest("ping", xability.Value(fmt.Sprintf("%d", i)))); v != "pong" {
			b.Fatal(v)
		}
	}
}
